/**
 * @file
 * Shared helpers for the per-figure benchmark binaries.
 *
 * Every binary regenerates one table or figure of the paper: it runs
 * fresh simulations, prints the series as an aligned table, appends
 * machine-readable CSV, and (where the paper calls one out) prints
 * the derived statistic such as the ring/mesh cross-over point.
 */

#ifndef HRSIM_BENCH_BENCH_COMMON_HH
#define HRSIM_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <iostream>
#include <string>

#include "core/analysis.hh"
#include "core/experiment.hh"
#include "core/system.hh"
#include "workload/region.hh"

namespace hrsim::bench
{

/** Measurement protocol used by all figure benches. */
inline SimConfig
benchSim()
{
    SimConfig sim;
    sim.warmupCycles = 4000;
    sim.batchCycles = 4000;
    sim.numBatches = 5;
    return sim;
}

inline SystemConfig
ringConfig(const std::string &topo, std::uint32_t line_bytes, int t,
           double r, std::uint32_t global_speed = 1)
{
    SystemConfig cfg = SystemConfig::ring(topo, line_bytes);
    cfg.workload.outstandingT = t;
    cfg.workload.localityR = r;
    cfg.globalRingSpeed = global_speed;
    cfg.sim = benchSim();
    return cfg;
}

inline SystemConfig
meshConfig(int width, std::uint32_t line_bytes,
           std::uint32_t buffer_flits, int t, double r)
{
    SystemConfig cfg =
        SystemConfig::mesh(width, line_bytes, buffer_flits);
    cfg.workload.outstandingT = t;
    cfg.workload.localityR = r;
    cfg.sim = benchSim();
    return cfg;
}

/** Add the ring ladder (Table 2 topologies) to a report series. */
inline void
runRingLadder(Report &report, const std::string &series,
              std::uint32_t line_bytes, int t, double r,
              std::uint32_t global_speed = 1, int max_nodes = 128)
{
    for (const std::string &topo : standardRingLadder(line_bytes)) {
        SystemConfig cfg =
            ringConfig(topo, line_bytes, t, r, global_speed);
        if (cfg.numProcessors() > max_nodes)
            continue;
        // Skip degenerate points whose access region has no remote
        // PM (e.g. R = 0.1 on a 4-node system).
        if (regionRemoteCount(cfg.numProcessors(), r) == 0)
            continue;
        const RunResult result = runSystem(cfg);
        report.add(series, cfg.numProcessors(), result.avgLatency);
    }
}

/** Add the square-mesh sweep to a report series. */
inline void
runMeshSweep(Report &report, const std::string &series,
             std::uint32_t line_bytes, std::uint32_t buffer_flits,
             int t, double r, int max_nodes = 121)
{
    for (const int width : standardMeshWidths(max_nodes)) {
        SystemConfig cfg =
            meshConfig(width, line_bytes, buffer_flits, t, r);
        if (regionRemoteCount(cfg.numProcessors(), r) == 0)
            continue;
        const RunResult result = runSystem(cfg);
        report.add(series, cfg.numProcessors(), result.avgLatency);
    }
}

/** Print table, cross-over (if both series named), then CSV. */
inline void
emit(const Report &report)
{
    report.print(std::cout);
    std::cout << "\n";
    report.writeCsv(std::cout);
    std::cout << std::endl;
}

/** Print the cross-over between a mesh and a ring series, if any. */
inline void
printCrossover(const Report &report, const std::string &mesh_series,
               const std::string &ring_series)
{
    const auto x = crossoverPoint(report.seriesPoints(ring_series),
                                  report.seriesPoints(mesh_series));
    if (x) {
        std::printf("cross-over (%s vs %s): mesh wins above ~%.0f "
                    "nodes\n",
                    mesh_series.c_str(), ring_series.c_str(), *x);
    } else {
        std::printf("cross-over (%s vs %s): none up to the largest "
                    "size (rings keep winning or never win)\n",
                    mesh_series.c_str(), ring_series.c_str());
    }
}

} // namespace hrsim::bench

#endif // HRSIM_BENCH_BENCH_COMMON_HH
