/**
 * @file
 * Shared helpers for the per-figure benchmark binaries.
 *
 * Every binary regenerates one table or figure of the paper: it runs
 * fresh simulations, prints the series as an aligned table, appends
 * machine-readable CSV, and (where the paper calls one out) prints
 * the derived statistic such as the ring/mesh cross-over point.
 *
 * Setting HRSIM_METRICS_OUT=FILE additionally serializes every point
 * the binary simulates — full metric registry plus run manifest — to
 * FILE in the standard hrsim-metrics-v1 JSON schema, labelled
 * "<series> P=<processors>" so each plotted sample can be traced back
 * to its underlying counters (see EXPERIMENTS.md).
 */

#ifndef HRSIM_BENCH_BENCH_COMMON_HH
#define HRSIM_BENCH_BENCH_COMMON_HH

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "core/analysis.hh"
#include "core/experiment.hh"
#include "core/sweep.hh"
#include "core/system.hh"
#include "obs/manifest.hh"
#include "obs/metric_sink.hh"
#include "workload/region.hh"

namespace hrsim::bench
{

/**
 * Worker threads for figure sweeps: HRSIM_JOBS if set (>= 1), else
 * one per hardware thread. Results are bit-identical at any setting
 * (see SweepRunner's determinism contract), so parallelism is safe to
 * default on.
 */
inline unsigned
benchJobs()
{
    if (const char *env = std::getenv("HRSIM_JOBS")) {
        char *end = nullptr;
        const long jobs = std::strtol(env, &end, 10);
        if (end == env || *end != '\0' || jobs < 1) {
            std::fprintf(stderr,
                         "warning: ignoring invalid HRSIM_JOBS=\"%s\" "
                         "(want an integer >= 1); using hardware "
                         "concurrency\n",
                         env);
        } else {
            return static_cast<unsigned>(jobs);
        }
    }
    return 0; // SweepRunner resolves 0 to hardware_concurrency()
}

/** Process-wide sweep runner shared by every figure in a binary. */
inline SweepRunner &
benchRunner()
{
    static SweepRunner runner{[] {
        SweepOptions opts;
        opts.jobs = benchJobs();
        return opts;
    }()};
    return runner;
}

/** Measurement protocol used by all figure benches. */
inline SimConfig
benchSim()
{
    SimConfig sim;
    sim.warmupCycles = 4000;
    sim.batchCycles = 4000;
    sim.numBatches = 5;
    return sim;
}

inline SystemConfig
ringConfig(const std::string &topo, std::uint32_t line_bytes, int t,
           double r, std::uint32_t global_speed = 1)
{
    SystemConfig cfg = SystemConfig::ring(topo, line_bytes);
    cfg.workload.outstandingT = t;
    cfg.workload.localityR = r;
    cfg.globalRingSpeed = global_speed;
    cfg.sim = benchSim();
    return cfg;
}

inline SystemConfig
meshConfig(int width, std::uint32_t line_bytes,
           std::uint32_t buffer_flits, int t, double r)
{
    SystemConfig cfg =
        SystemConfig::mesh(width, line_bytes, buffer_flits);
    cfg.workload.outstandingT = t;
    cfg.workload.localityR = r;
    cfg.sim = benchSim();
    return cfg;
}

/**
 * Process-wide HRSIM_METRICS_OUT collector: accumulates the metric
 * point of every simulated config and writes one hrsim-metrics-v1
 * JSON artifact when the binary exits. Disabled (and free) unless the
 * environment variable is set.
 */
class BenchMetricsDump
{
  public:
    static BenchMetricsDump &
    instance()
    {
        static BenchMetricsDump dump;
        return dump;
    }

    void
    add(const std::string &series, const SystemConfig &cfg,
        const RunResult &result)
    {
        if (path_.empty())
            return;
        if (points_.empty())
            baseCfg_ = cfg;
        points_.push_back(metricPoint(
            series + " P=" + std::to_string(cfg.numProcessors()),
            result));
        nodeCycles_ += static_cast<double>(result.cycles) *
                       cfg.numProcessors();
    }

    ~BenchMetricsDump()
    {
        if (path_.empty() || points_.empty())
            return;
        const double wall =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start_)
                .count();
        unsigned jobs = benchJobs();
        if (jobs == 0)
            jobs = std::thread::hardware_concurrency();
        try {
            writeMetricsFile(path_, "json",
                             makeManifest(baseCfg_, jobs, wall,
                                          nodeCycles_),
                             points_);
        } catch (const std::exception &err) {
            std::fprintf(stderr,
                         "warning: HRSIM_METRICS_OUT write failed: "
                         "%s\n",
                         err.what());
        }
    }

  private:
    BenchMetricsDump()
    {
        if (const char *env = std::getenv("HRSIM_METRICS_OUT"))
            path_ = env;
    }

    std::string path_;
    std::vector<MetricPoint> points_;
    SystemConfig baseCfg_;
    double nodeCycles_ = 0.0;
    std::chrono::steady_clock::time_point start_ =
        std::chrono::steady_clock::now();
};

/** runSystem() plus HRSIM_METRICS_OUT bookkeeping for one point. */
inline RunResult
runPoint(const std::string &series, const SystemConfig &cfg)
{
    RunResult result = runSystem(cfg);
    BenchMetricsDump::instance().add(series, cfg, result);
    return result;
}

/** Run @a points on the shared pool, adding avgLatency per point. */
inline void
sweepIntoReport(Report &report, const std::string &series,
                const std::vector<SystemConfig> &points)
{
    const std::vector<RunResult> results = benchRunner().run(points);
    for (std::size_t i = 0; i < points.size(); ++i) {
        report.add(series, points[i].numProcessors(),
                   results[i].avgLatency);
        BenchMetricsDump::instance().add(series, points[i],
                                         results[i]);
    }
}

/** Add the ring ladder (Table 2 topologies) to a report series. */
inline void
runRingLadder(Report &report, const std::string &series,
              std::uint32_t line_bytes, int t, double r,
              std::uint32_t global_speed = 1, int max_nodes = 128)
{
    std::vector<SystemConfig> points;
    for (const std::string &topo : standardRingLadder(line_bytes)) {
        SystemConfig cfg =
            ringConfig(topo, line_bytes, t, r, global_speed);
        if (cfg.numProcessors() > max_nodes)
            continue;
        // Skip degenerate points whose access region has no remote
        // PM (e.g. R = 0.1 on a 4-node system).
        if (regionRemoteCount(cfg.numProcessors(), r) == 0)
            continue;
        points.push_back(cfg);
    }
    sweepIntoReport(report, series, points);
}

/** Add the square-mesh sweep to a report series. */
inline void
runMeshSweep(Report &report, const std::string &series,
             std::uint32_t line_bytes, std::uint32_t buffer_flits,
             int t, double r, int max_nodes = 121)
{
    std::vector<SystemConfig> points;
    for (const int width : standardMeshWidths(max_nodes)) {
        SystemConfig cfg =
            meshConfig(width, line_bytes, buffer_flits, t, r);
        if (regionRemoteCount(cfg.numProcessors(), r) == 0)
            continue;
        points.push_back(cfg);
    }
    sweepIntoReport(report, series, points);
}

/** Print table, cross-over (if both series named), then CSV. */
inline void
emit(const Report &report)
{
    report.print(std::cout);
    std::cout << "\n";
    report.writeCsv(std::cout);
    std::cout << std::endl;
}

/** Print the cross-over between a mesh and a ring series, if any. */
inline void
printCrossover(const Report &report, const std::string &mesh_series,
               const std::string &ring_series)
{
    const auto x = crossoverPoint(report.seriesPoints(ring_series),
                                  report.seriesPoints(mesh_series));
    if (x) {
        std::printf("cross-over (%s vs %s): mesh wins above ~%.0f "
                    "nodes\n",
                    mesh_series.c_str(), ring_series.c_str(), *x);
    } else {
        std::printf("cross-over (%s vs %s): none up to the largest "
                    "size (rings keep winning or never win)\n",
                    mesh_series.c_str(), ring_series.c_str());
    }
}

} // namespace hrsim::bench

#endif // HRSIM_BENCH_BENCH_COMMON_HH
