/**
 * @file
 * Extension: slotted vs. wormhole switching on hierarchical rings.
 *
 * The paper's simulator lineage is slotted (Hector) extended to
 * wormhole, and Section 5 notes — citing the authors' companion study
 * (Ravindran & Stumm, IEICE 1996) — that "slotted rings tend to
 * perform somewhat better" while the paper conservatively assumes
 * wormhole. This bench runs both switching modes over the ring ladder
 * so the claim can be examined directly.
 */

#include <cstdio>

#include "bench_common.hh"

int
main()
{
    using namespace hrsim;
    using namespace hrsim::bench;

    for (const std::uint32_t line : {32u, 64u}) {
        Report report("Extension: wormhole vs slotted switching, " +
                          std::to_string(line) +
                          "B lines (R=1.0, C=0.04, T=4)",
                      "nodes", "latency, cycles");
        for (const bool slotted : {false, true}) {
            const std::string series =
                slotted ? "slotted" : "wormhole";
            for (const std::string &topo : standardRingLadder(line)) {
                SystemConfig cfg = ringConfig(topo, line, 4, 1.0);
                cfg.ringSlotted = slotted;
                report.add(series, cfg.numProcessors(),
                           runPoint(series, cfg).avgLatency);
            }
        }
        emit(report);
        printCrossover(report, "slotted", "wormhole");
    }
    std::printf("paper check: the companion study [21] finds slotted "
                "somewhat better; expect parity to a modest slotted "
                "edge below the bisection limit\n");
    return 0;
}
