/**
 * @file
 * Figure 16: rings vs. meshes with 1-flit mesh buffers, 128 B cache
 * lines, T = 1, 2, 4 (R = 1.0, C = 0.04).
 *
 * Paper shape: with 1-flit buffers worms stall across many links and
 * rings beat meshes at every size up to 121+ nodes, for every
 * cache-line size.
 */

#include <cstdio>

#include "bench_common.hh"

int
main()
{
    using namespace hrsim;
    using namespace hrsim::bench;

    Report report("Figure 16: rings vs meshes (1-flit buffers), "
                  "128B lines (R=1.0, C=0.04)",
                  "nodes", "latency, cycles");
    for (const int t : {1, 2, 4}) {
        runMeshSweep(report, "Mesh T=" + std::to_string(t), 128, 1, t,
                     1.0);
        runRingLadder(report, "Ring T=" + std::to_string(t), 128, t,
                      1.0);
    }
    emit(report);
    for (const int t : {1, 2, 4}) {
        printCrossover(report, "Mesh T=" + std::to_string(t),
                       "Ring T=" + std::to_string(t));
    }
    std::printf("paper check: no cross-over below 121 nodes (rings "
                "always win against 1-flit meshes)\n");
    return 0;
}
