/**
 * @file
 * Ablation A3: ring neighborhood model — wrapped (our default; a
 * ring is closed) vs. clipped-to-line (a literal reading of the
 * paper's projection). DESIGN.md documents the substitution; this
 * bench bounds its effect.
 */

#include <cstdio>

#include "bench_common.hh"

int
main()
{
    using namespace hrsim;
    using namespace hrsim::bench;

    Report report("Ablation A3: ring region wrap vs clip, 64B lines "
                  "(R=0.2, C=0.04, T=4)",
                  "nodes", "latency, cycles");
    for (const bool wrap : {true, false}) {
        const std::string series = wrap ? "wrapped" : "clipped";
        for (const std::string &topo : standardRingLadder(64)) {
            SystemConfig cfg = ringConfig(topo, 64, 4, 0.2);
            cfg.ringWrapRegion = wrap;
            report.add(series, cfg.numProcessors(),
                       runPoint(series, cfg).avgLatency);
        }
    }
    emit(report);
    std::printf("expectation: small differences only (edge PMs see "
                "slightly different regions); shapes unchanged\n");
    return 0;
}
