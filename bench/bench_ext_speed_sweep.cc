/**
 * @file
 * Extension of Section 6: the paper doubles the global ring clock and
 * shows five second-level rings become sustainable. This bench asks
 * the natural next question — how far does cranking the global ring
 * go? It sweeps the global-ring clock multiplier from 1x to 4x for
 * 3-level hierarchies and reports latency and global-ring
 * utilization.
 *
 * Expectation: 2x relieves the bisection constraint for the paper's
 * sizes; returns diminish beyond that because the intermediate rings
 * and the IRI transfer queues become the next bottleneck.
 */

#include <cstdio>

#include "bench_common.hh"

int
main()
{
    using namespace hrsim;
    using namespace hrsim::bench;

    Report latency("Extension: global-ring speed sweep, 64B lines "
                   "(R=1.0, C=0.04, T=4)",
                   "nodes", "latency, cycles");
    Report util("Extension: global-ring utilization under the speed "
                "sweep",
                "nodes", "% of max");

    for (const std::uint32_t speed : {1u, 2u, 3u, 4u}) {
        const std::string series = std::to_string(speed) + "x global";
        for (int j = 2; j * 18 <= 130; ++j) {
            const std::string topo = std::to_string(j) + ":3:6";
            SystemConfig cfg = ringConfig(topo, 64, 4, 1.0, speed);
            const RunResult result = runPoint(series, cfg);
            latency.add(series, j * 18, result.avgLatency);
            util.add(series, j * 18,
                     100.0 * result.ringLevelUtilization[0]);
        }
    }
    emit(latency);
    emit(util);
    std::printf("expectation: 2x removes the 3-ring limit; 3x/4x add "
                "little because the next bottleneck is below the "
                "global ring\n");
    return 0;
}
