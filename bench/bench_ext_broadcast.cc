/**
 * @file
 * Extension: broadcast cost, hierarchical ring vs. mesh.
 *
 * Motivation (v) of the paper: the ring topology "allows efficient
 * implementation of broadcasts", useful for invalidation-based cache
 * coherence [13] and multicast [6]. This bench quantifies the claim:
 * a single invalidation broadcast to all P-1 remote PMs, implemented
 * natively on the slotted hierarchical ring (one cell circulating
 * each ring once) versus P-1 serialized unicasts on the mesh (the
 * only mechanism a mesh offers). Reported: cycles until the last PM
 * has received the message, at zero background load.
 */

#include <cstdio>
#include <set>
#include <string>

#include "bench_common.hh"
#include "mesh/mesh_network.hh"
#include "proto/packet_factory.hh"
#include "ring/slotted_network.hh"

namespace
{

using namespace hrsim;

Cycle
ringBroadcastTime(const std::string &topo)
{
    SlottedRingNetwork::Params params;
    params.topo = RingTopology::parse(topo);
    params.cacheLineBytes = 64;
    SlottedRingNetwork net(params);
    const int pms = net.numProcessors();

    std::set<NodeId> got;
    Cycle last = 0;
    net.setDeliveryHandler([&](const Packet &pkt, Cycle now) {
        got.insert(pkt.dst);
        last = now;
    });
    Packet pkt;
    pkt.id = 1;
    pkt.type = PacketType::WriteRequest;
    pkt.src = 0;
    pkt.dst = broadcastNode;
    pkt.sizeFlits = 1;
    net.inject(0, pkt);
    Cycle now = 0;
    while (static_cast<int>(got.size()) < pms - 1 && now < 100000)
        net.tick(now++);
    return last;
}

Cycle
meshBroadcastTime(int width)
{
    MeshNetwork net(MeshNetwork::Params{width, 64, 4});
    PacketFactory factory(ChannelSpec::mesh(), 64);
    const int pms = width * width;

    std::set<NodeId> got;
    Cycle last = 0;
    net.setDeliveryHandler([&](const Packet &pkt, Cycle now) {
        got.insert(pkt.dst);
        last = now;
    });
    // P-1 header-only unicasts from PM 0, injected as fast as the
    // NIC output queue drains.
    NodeId next = 1;
    Cycle now = 0;
    while (static_cast<int>(got.size()) < pms - 1 && now < 100000) {
        while (next < pms) {
            const Packet pkt =
                factory.makeRequest(0, next, true, now);
            if (!net.canInject(0, pkt))
                break;
            net.inject(0, pkt);
            ++next;
        }
        net.tick(now++);
    }
    return last;
}

} // namespace

int
main()
{
    using namespace hrsim;
    using namespace hrsim::bench;

    Report report("Extension: broadcast completion time "
                  "(invalidation to all P-1 PMs, zero load)",
                  "nodes", "cycles to last delivery");

    const char *ring_topos[] = {"3:4",   "2:3:4", "2:3:6",
                                "3:3:6", "2:3:12", "3:3:12"};
    for (const char *topo : ring_topos) {
        const long pms = RingTopology::parse(topo).numProcessors();
        report.add("ring broadcast", static_cast<double>(pms),
                   static_cast<double>(ringBroadcastTime(topo)));
    }
    for (const int width : {3, 5, 6, 8, 10, 11}) {
        report.add("mesh unicasts",
                   static_cast<double>(width * width),
                   static_cast<double>(meshBroadcastTime(width)));
    }
    emit(report);
    std::printf("paper check: motivation (v) — ring broadcast cost "
                "is a few ring laps (O(sqrt-ish laps)), mesh cost "
                "grows ~linearly with P from source serialization\n");
    return 0;
}
