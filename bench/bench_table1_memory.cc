/**
 * @file
 * Regenerates Table 1 of the paper: NIC buffer-memory requirements
 * for rings (one cache-line-sized ring buffer of 16 B flits) versus
 * meshes (four input buffers of 4 B flits at cl, 4-flit and 1-flit
 * depths).
 */

#include <cstdio>
#include <initializer_list>

#include "core/memory_cost.hh"

int
main()
{
    std::printf("== Table 1: NIC buffer memory requirements ==\n");
    std::printf("%-10s %-12s %-10s %-10s %-10s %-10s\n", "network",
                "line(B)", "cl-buf(B)", "4-flit(B)", "1-flit(B)", "");
    for (const unsigned line : {16u, 32u, 64u, 128u}) {
        std::printf("%-10s %-12u %-10u %-10s %-10s\n", "ring", line,
                    hrsim::ringNicBufferBytes(line), "-", "-");
    }
    for (const unsigned line : {16u, 32u, 64u, 128u}) {
        std::printf("%-10s %-12u %-10u %-10u %-10u\n", "mesh", line,
                    hrsim::meshNicBufferBytes(line, 0),
                    hrsim::meshNicBufferBytes(line, 4),
                    hrsim::meshNicBufferBytes(line, 1));
    }
    std::printf("\npaper check: ring 128B line -> 144 B; mesh 128B "
                "line -> 576/64/16 B\n");
    return 0;
}
