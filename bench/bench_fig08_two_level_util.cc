/**
 * @file
 * Figure 8: local- and global-ring utilization of 2-level ring
 * hierarchies vs. node count (R = 1.0, C = 0.04, T = 4).
 *
 * Paper shape: global-ring utilization approaches saturation at three
 * local rings — independent of cache-line size — while local-ring
 * utilization falls as more local rings are added.
 */

#include <cstdio>

#include "bench_common.hh"

namespace
{

int
maxLocalRing(std::uint32_t line_bytes)
{
    switch (line_bytes) {
      case 16:
        return 12;
      case 32:
        return 8;
      case 64:
        return 6;
      default:
        return 4;
    }
}

} // namespace

int
main()
{
    using namespace hrsim;
    using namespace hrsim::bench;

    Report global("Figure 8a: global ring utilization, 2-level "
                  "hierarchies (R=1.0, C=0.04, T=4)",
                  "nodes", "% of max");
    Report local("Figure 8b: local ring utilization, 2-level "
                 "hierarchies (R=1.0, C=0.04, T=4)",
                 "nodes", "% of max");

    for (const std::uint32_t line : {16u, 32u, 64u, 128u}) {
        const int m = maxLocalRing(line);
        const std::string series = std::to_string(line) + "B";
        for (int k = 2; k * m <= 64; ++k) {
            const std::string topo =
                std::to_string(k) + ":" + std::to_string(m);
            SystemConfig cfg = ringConfig(topo, line, 4, 1.0);
            const RunResult result = runPoint(series, cfg);
            global.add(series, k * m,
                       100.0 * result.ringLevelUtilization[0]);
            local.add(series, k * m,
                      100.0 * result.ringLevelUtilization[1]);
        }
    }
    emit(global);
    emit(local);
    std::printf("paper check: global ring nears full utilization at "
                "3 local rings for every cache-line size\n");
    return 0;
}
