/**
 * @file
 * Figure 14: rings vs. meshes with 4-flit mesh buffers, for the four
 * cache-line sizes and T = 1, 2, 4 (R = 1.0, C = 0.04).
 *
 * Paper shape to reproduce: rings win small systems, meshes win large
 * ones; the cross-over grows with cache-line size — about 16/25/27/36
 * nodes for 16/32/64/128 B lines — and is nearly independent of T
 * (except T = 1, where it is higher).
 */

#include <cstdio>

#include "bench_common.hh"

int
main()
{
    using namespace hrsim;
    using namespace hrsim::bench;

    for (const std::uint32_t line : {16u, 32u, 64u, 128u}) {
        Report report("Figure 14: rings vs meshes (4-flit buffers), " +
                          std::to_string(line) +
                          "B lines (R=1.0, C=0.04)",
                      "nodes", "latency, cycles");
        for (const int t : {1, 2, 4}) {
            runMeshSweep(report, "Mesh T=" + std::to_string(t), line,
                         4, t, 1.0);
            runRingLadder(report, "Ring T=" + std::to_string(t), line,
                          t, 1.0);
        }
        emit(report);
        for (const int t : {1, 2, 4}) {
            printCrossover(report, "Mesh T=" + std::to_string(t),
                           "Ring T=" + std::to_string(t));
        }
        std::printf("\n");
    }
    std::printf("paper check: cross-overs ~16/25/27/36 nodes for "
                "16/32/64/128B lines (T >= 2)\n");
    return 0;
}
