/**
 * @file
 * Ablation A2: mesh output-port arbitration policy. The paper
 * specifies round-robin; this bench compares it against a fixed
 * priority order across the mesh sweep.
 */

#include <cstdio>

#include "bench_common.hh"

int
main()
{
    using namespace hrsim;
    using namespace hrsim::bench;

    Report report("Ablation A2: mesh arbitration round-robin vs "
                  "fixed, 64B lines, 4-flit buffers "
                  "(R=1.0, C=0.04, T=4)",
                  "nodes", "latency, cycles");
    for (const bool rr : {true, false}) {
        const std::string series = rr ? "round-robin" : "fixed";
        for (const int width : standardMeshWidths(121)) {
            SystemConfig cfg = meshConfig(width, 64, 4, 4, 1.0);
            cfg.meshRoundRobin = rr;
            report.add(series, width * width,
                       runPoint(series, cfg).avgLatency);
        }
    }
    emit(report);
    std::printf("expectation: fixed priority starves some flows under "
                "load, raising average latency at larger sizes\n");
    return 0;
}
