/**
 * @file
 * Figure 15: rings vs. meshes with cl-sized mesh buffers, 128 B
 * cache lines, T = 1, 2, 4 (R = 1.0, C = 0.04).
 *
 * Paper shape: with cache-line-sized mesh buffers the cross-over
 * drops to 16-30 nodes depending on T (a worm can no longer stall
 * across multiple links).
 */

#include <cstdio>

#include "bench_common.hh"

int
main()
{
    using namespace hrsim;
    using namespace hrsim::bench;

    Report report("Figure 15: rings vs meshes (cl-sized buffers), "
                  "128B lines (R=1.0, C=0.04)",
                  "nodes", "latency, cycles");
    for (const int t : {1, 2, 4}) {
        runMeshSweep(report, "Mesh T=" + std::to_string(t), 128, 0, t,
                     1.0);
        runRingLadder(report, "Ring T=" + std::to_string(t), 128, t,
                      1.0);
    }
    emit(report);
    for (const int t : {1, 2, 4}) {
        printCrossover(report, "Mesh T=" + std::to_string(t),
                       "Ring T=" + std::to_string(t));
    }
    std::printf("paper check: cross-overs between 16 and 30 nodes "
                "depending on T\n");
    return 0;
}
