/**
 * @file
 * google-benchmark harness measuring the simulator's own throughput
 * (simulated node-cycles per wall-second) for representative ring and
 * mesh configurations.
 */

#include <benchmark/benchmark.h>

#include "core/system.hh"

namespace
{

using namespace hrsim;

SystemConfig
ringCfg(const char *topo)
{
    SystemConfig cfg = SystemConfig::ring(topo, 64);
    cfg.workload.outstandingT = 4;
    return cfg;
}

SystemConfig
meshCfg(int width)
{
    SystemConfig cfg = SystemConfig::mesh(width, 64, 4);
    cfg.workload.outstandingT = 4;
    return cfg;
}

void
runCycles(benchmark::State &state, const SystemConfig &cfg)
{
    System system(cfg);
    system.step(1000); // move past the cold start
    const auto pms = static_cast<std::uint64_t>(
        system.network().numProcessors());
    std::uint64_t cycles = 0;
    for (auto _ : state) {
        system.step(1000);
        cycles += 1000;
    }
    state.counters["node_cycles/s"] = benchmark::Counter(
        static_cast<double>(cycles * pms), benchmark::Counter::kIsRate);
}

void
BM_RingSmall(benchmark::State &state)
{
    runCycles(state, ringCfg("2:4"));
}

void
BM_RingLarge(benchmark::State &state)
{
    runCycles(state, ringCfg("3:3:12"));
}

void
BM_MeshSmall(benchmark::State &state)
{
    runCycles(state, meshCfg(3));
}

void
BM_MeshLarge(benchmark::State &state)
{
    runCycles(state, meshCfg(11));
}

BENCHMARK(BM_RingSmall);
BENCHMARK(BM_RingLarge);
BENCHMARK(BM_MeshSmall);
BENCHMARK(BM_MeshLarge);

} // namespace

BENCHMARK_MAIN();
