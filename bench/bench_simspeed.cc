/**
 * @file
 * google-benchmark harness measuring the simulator's own throughput
 * (simulated node-cycles per wall-second) for representative ring and
 * mesh configurations.
 *
 * Each topology is measured twice: the Legacy variants force the
 * every-cycle tick loop (sim.idleSkip = false), the Fast variants use
 * the skip-idle scheduler, so the speedup of the hot-path work is
 * measured, not asserted. BM_Sweep* measure the parallel sweep engine
 * end to end (wall-clock per whole figure-style sweep).
 */

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <string>
#include <thread>

#include "core/sweep.hh"
#include "core/system.hh"
#include "obs/build_info.hh"

namespace
{

using namespace hrsim;

SystemConfig
ringCfg(const char *topo, bool idle_skip)
{
    SystemConfig cfg = SystemConfig::ring(topo, 64);
    cfg.workload.outstandingT = 4;
    cfg.sim.idleSkip = idle_skip;
    return cfg;
}

SystemConfig
meshCfg(int width, bool idle_skip)
{
    SystemConfig cfg = SystemConfig::mesh(width, 64, 4);
    cfg.workload.outstandingT = 4;
    cfg.sim.idleSkip = idle_skip;
    return cfg;
}

void
runCycles(benchmark::State &state, const SystemConfig &cfg)
{
    System system(cfg);
    system.step(1000); // move past the cold start
    const auto pms = static_cast<std::uint64_t>(
        system.network().numProcessors());
    std::uint64_t cycles = 0;
    for (auto _ : state) {
        system.step(1000);
        cycles += 1000;
    }
    state.counters["node_cycles/s"] = benchmark::Counter(
        static_cast<double>(cycles * pms), benchmark::Counter::kIsRate);
}

void
BM_RingSmall(benchmark::State &state)
{
    runCycles(state, ringCfg("2:4", true));
}

void
BM_RingLarge(benchmark::State &state)
{
    runCycles(state, ringCfg("3:3:12", true));
}

void
BM_MeshSmall(benchmark::State &state)
{
    runCycles(state, meshCfg(3, true));
}

void
BM_MeshLarge(benchmark::State &state)
{
    runCycles(state, meshCfg(11, true));
}

/**
 * Mostly-idle network: at C = 0.01 a small ring spends most cycles
 * with no flit in flight, which is exactly what the active-set
 * scheduler and the quiescent-gap fast-forward are for. Compare
 * against BM_RingSmallLowCLegacy for the realized speedup.
 */
void
BM_RingSmallLowC(benchmark::State &state)
{
    SystemConfig cfg = ringCfg("2:4", true);
    cfg.workload.missRateC = 0.01;
    runCycles(state, cfg);
}

void
BM_RingSmallLowCLegacy(benchmark::State &state)
{
    SystemConfig cfg = ringCfg("2:4", false);
    cfg.workload.missRateC = 0.01;
    runCycles(state, cfg);
}

void
BM_RingLargeLegacy(benchmark::State &state)
{
    runCycles(state, ringCfg("3:3:12", false));
}

void
BM_MeshLargeLegacy(benchmark::State &state)
{
    runCycles(state, meshCfg(11, false));
}

/**
 * The shard-parallel tick engine (DESIGN.md section 15) on the same
 * large configs, at a fixed 4-thread pool. Compare against
 * BM_RingLarge / BM_MeshLarge for the realized intra-run speedup —
 * on a machine with fewer than 4 cores these mostly measure barrier
 * overhead under timesharing (the num_cpus context field says which
 * it was).
 */
void
BM_RingLargeTick4(benchmark::State &state)
{
    SystemConfig cfg = ringCfg("3:3:12", true);
    cfg.sim.tickThreads = 4;
    runCycles(state, cfg);
}

void
BM_MeshLargeTick4(benchmark::State &state)
{
    SystemConfig cfg = meshCfg(11, true);
    cfg.sim.tickThreads = 4;
    runCycles(state, cfg);
}

/** A figure-style point list: the paper's mid-size rings and meshes
 *  with a short measurement protocol, so one benchmark iteration is
 *  one whole sweep. */
std::vector<SystemConfig>
sweepPoints()
{
    std::vector<SystemConfig> points;
    for (const char *topo : {"4", "8", "2:4", "2:8", "3:3:4"})
        points.push_back(ringCfg(topo, true));
    for (const int width : {2, 3, 4, 5, 6})
        points.push_back(meshCfg(width, true));
    for (auto &cfg : points) {
        cfg.sim.warmupCycles = 1000;
        cfg.sim.batchCycles = 1000;
        cfg.sim.numBatches = 3;
    }
    return points;
}

void
runSweepBench(benchmark::State &state, unsigned jobs)
{
    const std::vector<SystemConfig> points = sweepPoints();
    SweepOptions opts;
    opts.jobs = jobs;
    SweepRunner runner(opts);
    std::uint64_t swept = 0;
    for (auto _ : state) {
        const auto results = runner.run(points);
        benchmark::DoNotOptimize(results.front().avgLatency);
        swept += points.size();
    }
    state.counters["points/s"] = benchmark::Counter(
        static_cast<double>(swept), benchmark::Counter::kIsRate);
}

void
BM_SweepSerial(benchmark::State &state)
{
    runSweepBench(state, 1);
}

void
BM_SweepParallel4(benchmark::State &state)
{
    runSweepBench(state, 4);
}

BENCHMARK(BM_RingSmall);
BENCHMARK(BM_RingSmallLowC);
BENCHMARK(BM_RingSmallLowCLegacy);
BENCHMARK(BM_RingLarge);
BENCHMARK(BM_RingLargeLegacy);
BENCHMARK(BM_MeshSmall);
BENCHMARK(BM_MeshLarge);
BENCHMARK(BM_MeshLargeLegacy);
BENCHMARK(BM_RingLargeTick4)->UseRealTime();
BENCHMARK(BM_MeshLargeTick4)->UseRealTime();
BENCHMARK(BM_SweepSerial);
BENCHMARK(BM_SweepParallel4)->UseRealTime();

} // namespace

/**
 * Custom main: BENCHMARK_MAIN() plus run-context records, so a saved
 * BENCH_simspeed.json says which build produced it. Without these, a
 * Debug-build artifact or one taken under HRSIM_FORCE_FULL_SCAN is
 * indistinguishable from a real Release baseline.
 */
int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::AddCustomContext("hrsim_build_type",
                                hrsim::buildType());
    benchmark::AddCustomContext("hrsim_git",
                                hrsim::buildGitDescribe());
    // Configured compiler flags: two Release baselines taken with
    // different -march/-O levels are not comparable, and without
    // this record the JSON cannot say so.
    benchmark::AddCustomContext("hrsim_build_flags",
                                hrsim::buildCxxFlags());
    const char *jobs_env = std::getenv("HRSIM_JOBS");
    benchmark::AddCustomContext(
        "hrsim_jobs",
        jobs_env != nullptr && jobs_env[0] != '\0'
            ? jobs_env
            : std::to_string(std::thread::hardware_concurrency()));
    const char *force = std::getenv("HRSIM_FORCE_FULL_SCAN");
    benchmark::AddCustomContext(
        "hrsim_force_full_scan",
        force != nullptr && force[0] != '\0' ? force : "0");
    const char *no_fast = std::getenv("HRSIM_NO_FASTPATH");
    benchmark::AddCustomContext(
        "hrsim_no_fastpath",
        no_fast != nullptr && no_fast[0] != '\0' ? no_fast : "0");
    const char *no_col = std::getenv("HRSIM_NO_COLUMNAR");
    benchmark::AddCustomContext(
        "hrsim_no_columnar",
        no_col != nullptr && no_col[0] != '\0' ? no_col : "0");
    // The *Tick4 benchmarks pin their own pool width; this records
    // the ambient request so an artifact taken under a global
    // HRSIM_TICK_THREADS override says so.
    const char *tick = std::getenv("HRSIM_TICK_THREADS");
    benchmark::AddCustomContext(
        "hrsim_tick_threads",
        tick != nullptr && tick[0] != '\0' ? tick : "1");
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
