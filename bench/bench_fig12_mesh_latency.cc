/**
 * @file
 * Figure 12: 2D-mesh latency vs. node count for cl-sized, 4-flit and
 * 1-flit router buffers and the four cache-line sizes (R = 1.0,
 * C = 0.04, T = 4).
 *
 * Paper shape: latency growth with system size is much more moderate
 * than for rings; buffer size matters — 1-flit buffers roughly
 * triple the latency of cl-sized buffers at 64+ processors.
 */

#include <cstdio>

#include "bench_common.hh"

int
main()
{
    using namespace hrsim;
    using namespace hrsim::bench;

    const struct
    {
        std::uint32_t flits;
        const char *label;
    } buffers[] = {{0, "cl-sized"}, {4, "4-flit"}, {1, "1-flit"}};

    for (const auto &buf : buffers) {
        Report report("Figure 12: 2D meshes, " +
                          std::string(buf.label) +
                          " buffers (R=1.0, C=0.04, T=4)",
                      "nodes", "latency, cycles");
        for (const std::uint32_t line : {16u, 32u, 64u, 128u}) {
            runMeshSweep(report, std::to_string(line) + "B", line,
                         buf.flits, 4, 1.0);
        }
        emit(report);
    }

    std::printf("paper check: moderate latency growth with size; "
                "1-flit buffers cost ~3x vs cl-sized at 64 PMs "
                "(128B lines)\n");
    return 0;
}
