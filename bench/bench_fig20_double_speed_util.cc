/**
 * @file
 * Figure 20: global-ring utilization of 3-level hierarchies with
 * normal- and double-speed global rings (R = 1.0, C = 0.04, T = 4).
 *
 * Paper shape: the double-speed global ring's utilization climbs more
 * slowly and more linearly than the normal-speed one.
 */

#include <cstdio>

#include "bench_common.hh"

namespace
{

int
maxLocalRing(std::uint32_t line_bytes)
{
    switch (line_bytes) {
      case 32:
        return 8;
      case 64:
        return 6;
      default:
        return 4;
    }
}

} // namespace

int
main()
{
    using namespace hrsim;
    using namespace hrsim::bench;

    Report report("Figure 20: global ring utilization, normal vs "
                  "double speed (R=1.0, C=0.04, T=4)",
                  "nodes", "% of max");
    for (const std::uint32_t line : {32u, 64u, 128u}) {
        const int m = maxLocalRing(line);
        for (const std::uint32_t speed : {1u, 2u}) {
            const std::string series =
                std::to_string(line) + "B " +
                (speed == 2 ? "double" : "normal");
            for (int j = 2; j * 3 * m <= 130; ++j) {
                const std::string topo =
                    std::to_string(j) + ":3:" + std::to_string(m);
                SystemConfig cfg =
                    ringConfig(topo, line, 4, 1.0, speed);
                const RunResult result = runPoint(series, cfg);
                report.add(series, j * 3 * m,
                           100.0 * result.ringLevelUtilization[0]);
            }
        }
    }
    emit(report);
    std::printf("paper check: double-speed utilization rises more "
                "slowly and more linearly\n");
    return 0;
}
