/**
 * @file
 * Extension: resilience study — ring vs mesh under link failures.
 *
 * The paper compares the two fabrics on latency alone and assumes a
 * perfect network. This bench re-asks the comparison under faults:
 * matched 16-PM systems (4:4 hierarchical ring, 4x4 mesh) take a
 * rising fraction of their node output links down for a fixed
 * mid-run window, with the processors' timeout/retry engine armed.
 * Reported per failure rate: survivor latency, delivery rate
 * (delivered/injected flits) and the drop/retry counts behind it.
 *
 * The asymmetry the numbers expose is structural (DESIGN.md s13):
 * e-cube mesh routing is deterministic, so every worm whose fixed
 * path crosses a dead link is drained and dropped at the fault for
 * the whole window, while a ring outage also blocks admission
 * upstream — the ring drains at the fault but stops accepting new
 * worms behind it, trading drops for backpressure.
 *
 * Everything is deterministic: the fault schedule is a pure function
 * of the failure rate, so reruns (any HRSIM_JOBS) reproduce the
 * table bit for bit.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hh"

namespace
{

using namespace hrsim;
using namespace hrsim::bench;

constexpr Cycle kFaultStart = 6000;
constexpr Cycle kFaultEnd = 12000;

/** Evenly-spread selection of @a k out of @a n candidates. */
std::vector<int>
spread(int n, int k)
{
    std::vector<int> picks;
    for (int i = 0; i < k; ++i)
        picks.push_back(i * n / k);
    return picks;
}

/** Down-windows on @a k of the 16 ring NIC output links. */
FaultPlan
ringPlan(int k)
{
    FaultPlan plan;
    for (const int nic : spread(16, k)) {
        FaultEvent event;
        std::string err;
        const std::string spec = "ring.nic" + std::to_string(nic) +
                                 ":down@" +
                                 std::to_string(kFaultStart) + ".." +
                                 std::to_string(kFaultEnd);
        if (!parseFaultSpec(spec, event, err))
            fatal(spec + ": " + err);
        plan.events.push_back(event);
    }
    plan.retry.timeoutCycles = 1000;
    plan.retry.maxRetries = 4;
    return plan;
}

/** Down-windows on @a k of the 4x4 mesh's eastward links. */
FaultPlan
meshPlan(int k)
{
    // Routers with an east neighbour (x < 3), row-major.
    std::vector<int> east;
    for (int r = 0; r < 16; ++r) {
        if (r % 4 != 3)
            east.push_back(r);
    }
    FaultPlan plan;
    for (const int pick : spread(static_cast<int>(east.size()), k)) {
        FaultEvent event;
        std::string err;
        const std::string spec =
            "mesh.r" + std::to_string(east[pick]) + ".east:down@" +
            std::to_string(kFaultStart) + ".." +
            std::to_string(kFaultEnd);
        if (!parseFaultSpec(spec, event, err))
            fatal(spec + ": " + err);
        plan.events.push_back(event);
    }
    plan.retry.timeoutCycles = 1000;
    plan.retry.maxRetries = 4;
    return plan;
}

struct FaultPoint
{
    RunResult result;
    double deliveryRate = 1.0;
    std::uint64_t droppedWorms = 0;
    std::uint64_t reissued = 0;
    std::uint64_t abandoned = 0;
};

FaultPoint
runFaulted(const std::string &series, const SystemConfig &cfg)
{
    System system(cfg);
    FaultPoint point;
    point.result = system.run();
    if (system.faults() != nullptr) {
        const FaultAccounting &acct = system.faults()->accounting();
        point.deliveryRate =
            acct.injectedFlits > 0
                ? static_cast<double>(acct.deliveredFlits) /
                      static_cast<double>(acct.injectedFlits)
                : 1.0;
        point.droppedWorms = acct.droppedWorms;
        point.reissued = system.retryCounters().reissued;
        point.abandoned = system.retryCounters().abandoned;
    }
    BenchMetricsDump::instance().add(series, cfg, point.result);
    return point;
}

} // namespace

int
main()
{
    // Failed node output links out of 16 (0%, 6%, 12%, 25%).
    const std::vector<int> kills = {0, 1, 2, 4};

    Report latency("Extension: survivor latency under link failures, "
                   "16 PMs, 64B lines (R=1.0, C=0.04, T=4, "
                   "window 6000..12000, timeout 1000, retries 4)",
                   "failed links (%)", "latency, cycles");
    Report delivery("Extension: delivery rate under link failures "
                    "(delivered / injected flits)",
                    "failed links (%)", "delivery rate, %");

    std::printf("series        fail%%   latency  delivery   dropped "
                "reissued abandoned\n");
    for (const int k : kills) {
        const int pct = k * 100 / 16;

        SystemConfig ring = ringConfig("4:4", 64, 4, 1.0);
        ring.faultPlan = ringPlan(k);
        const FaultPoint rp = runFaulted("ring 4:4", ring);
        latency.add("ring", pct, rp.result.avgLatency);
        delivery.add("ring", pct, 100.0 * rp.deliveryRate);
        std::printf("ring 4:4      %4d  %8.1f  %8.4f  %8llu %8llu "
                    "%9llu\n",
                    pct, rp.result.avgLatency, rp.deliveryRate,
                    static_cast<unsigned long long>(rp.droppedWorms),
                    static_cast<unsigned long long>(rp.reissued),
                    static_cast<unsigned long long>(rp.abandoned));

        SystemConfig mesh = meshConfig(4, 64, 4, 4, 1.0);
        mesh.faultPlan = meshPlan(k);
        const FaultPoint mp = runFaulted("mesh 4x4", mesh);
        latency.add("mesh", pct, mp.result.avgLatency);
        delivery.add("mesh", pct, 100.0 * mp.deliveryRate);
        std::printf("mesh 4x4      %4d  %8.1f  %8.4f  %8llu %8llu "
                    "%9llu\n",
                    pct, mp.result.avgLatency, mp.deliveryRate,
                    static_cast<unsigned long long>(mp.droppedWorms),
                    static_cast<unsigned long long>(mp.reissued),
                    static_cast<unsigned long long>(mp.abandoned));
    }
    std::printf("\n");

    emit(latency);
    emit(delivery);
    std::printf("structural note: e-cube mesh worms crossing a dead "
                "link are dropped for the whole window (no adaptive "
                "detour); the ring also refuses admission upstream of "
                "the fault, trading drops for backpressure\n");
    return 0;
}
