/**
 * @file
 * Figure 21: meshes (4-flit buffers) vs. 3-level rings with a
 * double-speed global ring, for 32/64/128 B lines (R = 1.0, C = 0.04,
 * T = 4).
 *
 * Paper shape: with the double-speed global ring, 128 B-line rings
 * beat meshes by 10-20% across these sizes even with no locality;
 * for 32/64 B lines the cross-overs stay where they were (they occur
 * before a third level is needed).
 */

#include <cstdio>

#include "bench_common.hh"

int
main()
{
    using namespace hrsim;
    using namespace hrsim::bench;

    Report report("Figure 21: meshes vs double-speed-global rings "
                  "(R=1.0, C=0.04, T=4)",
                  "nodes", "latency, cycles");
    for (const std::uint32_t line : {32u, 64u, 128u}) {
        runMeshSweep(report, "Mesh cl=" + std::to_string(line) + "B",
                     line, 4, 4, 1.0);
        runRingLadder(report, "Ring cl=" + std::to_string(line) + "B",
                      line, 4, 1.0, /*global_speed=*/2);
    }
    emit(report);
    for (const std::uint32_t line : {32u, 64u, 128u}) {
        printCrossover(report, "Mesh cl=" + std::to_string(line) + "B",
                       "Ring cl=" + std::to_string(line) + "B");
    }
    std::printf("paper check: 128B rings beat meshes by 10-20%% at "
                "all sizes; 32/64B cross-overs unchanged\n");
    return 0;
}
