/**
 * @file
 * Figure 10: global-ring utilization of 3-level hierarchies vs. node
 * count (R = 1.0, C = 0.04, T = 4).
 *
 * Paper shape: the global ring saturates once more than three
 * second-level rings are attached, for every cache-line size.
 */

#include <cstdio>

#include "bench_common.hh"

namespace
{

int
maxLocalRing(std::uint32_t line_bytes)
{
    switch (line_bytes) {
      case 16:
        return 12;
      case 32:
        return 8;
      case 64:
        return 6;
      default:
        return 4;
    }
}

} // namespace

int
main()
{
    using namespace hrsim;
    using namespace hrsim::bench;

    Report report("Figure 10: global ring utilization, 3-level "
                  "hierarchies (R=1.0, C=0.04, T=4)",
                  "nodes", "% of max");
    for (const std::uint32_t line : {16u, 32u, 64u, 128u}) {
        const int m = maxLocalRing(line);
        const std::string series = std::to_string(line) + "B";
        for (int j = 2; j * 3 * m <= 130; ++j) {
            const std::string topo =
                std::to_string(j) + ":3:" + std::to_string(m);
            SystemConfig cfg = ringConfig(topo, line, 4, 1.0);
            const RunResult result = runPoint(series, cfg);
            report.add(series, j * 3 * m,
                       100.0 * result.ringLevelUtilization[0]);
        }
    }
    emit(report);
    std::printf("paper check: global ring saturates past 3 "
                "second-level rings\n");
    return 0;
}
