/**
 * @file
 * Figure 17: rings vs. meshes with 4-flit mesh buffers under memory
 * access locality R = 0.1, 0.2, 0.3 (C = 0.04, T = 4), for the four
 * cache-line sizes.
 *
 * Paper shape: with even moderate locality (R = 0.3) rings win up to
 * 121 processors for 32+ B lines — by ~20% (32 B) to ~30% (64/128 B)
 * on average; the ring advantage is larger at R = 0.2 than R = 0.1.
 */

#include <cstdio>

#include "bench_common.hh"

int
main()
{
    using namespace hrsim;
    using namespace hrsim::bench;

    for (const std::uint32_t line : {16u, 32u, 64u, 128u}) {
        Report report("Figure 17: locality, " + std::to_string(line) +
                          "B lines, 4-flit mesh buffers "
                          "(C=0.04, T=4)",
                      "nodes", "latency, cycles");
        for (const double r : {0.1, 0.2, 0.3}) {
            const std::string tag =
                " R=" + std::to_string(r).substr(0, 3);
            runMeshSweep(report, "Mesh" + tag, line, 4, 4, r);
            runRingLadder(report, "Ring" + tag, line, 4, r);
        }
        emit(report);
        for (const double r : {0.1, 0.2, 0.3}) {
            const std::string tag =
                " R=" + std::to_string(r).substr(0, 3);
            printCrossover(report, "Mesh" + tag, "Ring" + tag);
        }
        std::printf("\n");
    }
    std::printf("paper check: rings win to ~121 PMs at R<=0.3 for "
                "32B+ lines; advantage larger at R=0.2 than R=0.1\n");
    return 0;
}
