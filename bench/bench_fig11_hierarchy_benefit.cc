/**
 * @file
 * Figure 11: the benefit of hierarchy depth for 32 B cache lines and
 * T = 2, for (a) no memory locality, R = 1.0, and (b) high locality,
 * R = 0.2.
 *
 * Paper shape: each additional level shifts the latency knee to the
 * right (more sustainable nodes); with locality the benefit of the
 * hierarchy is much larger.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hh"

namespace
{

struct LevelLadder
{
    const char *name;
    std::vector<std::string> topologies;
};

const LevelLadder ladders[] = {
    {"1-level", {"4", "8", "12", "16", "24", "32"}},
    {"2-level", {"2:8", "3:8", "4:8", "5:8", "6:8", "7:8"}},
    {"3-level", {"2:3:8", "3:3:8", "4:3:8", "5:3:8"}},
    {"4-level", {"2:2:2:6", "2:2:3:6", "2:3:3:6", "3:3:3:4"}},
};

} // namespace

int
main()
{
    using namespace hrsim;
    using namespace hrsim::bench;

    for (const double r : {1.0, 0.2}) {
        Report report(
            "Figure 11" + std::string(r == 1.0 ? "a" : "b") +
                ": hierarchy depth, 32B lines (R=" +
                std::to_string(r).substr(0, 3) + ", C=0.04, T=2)",
            "nodes", "latency, cycles");
        for (const LevelLadder &ladder : ladders) {
            for (const std::string &topo : ladder.topologies) {
                SystemConfig cfg = ringConfig(topo, 32, 2, r);
                report.add(ladder.name, cfg.numProcessors(),
                           runPoint(ladder.name, cfg).avgLatency);
            }
        }
        emit(report);
    }
    std::printf("paper check: each extra level shifts the latency "
                "knee right; the benefit is larger with locality\n");
    return 0;
}
