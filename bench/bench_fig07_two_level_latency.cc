/**
 * @file
 * Figure 7: latency of 2-level ring hierarchies vs. node count for
 * the four cache-line sizes (R = 1.0, C = 0.04, T = 4).
 *
 * Local rings hold the maximum sustainable single-ring population
 * (12/8/6/4 PMs for 16/32/64/128 B lines); the sweep adds local
 * rings to the global ring. Paper shape: a first slope increase when
 * the second local ring appears, a second (bisection-driven) one
 * beyond three local rings.
 */

#include <cstdio>

#include "bench_common.hh"

namespace
{

/** Paper's maximum single-ring population per cache-line size. */
int
maxLocalRing(std::uint32_t line_bytes)
{
    switch (line_bytes) {
      case 16:
        return 12;
      case 32:
        return 8;
      case 64:
        return 6;
      default:
        return 4;
    }
}

} // namespace

int
main()
{
    using namespace hrsim;
    using namespace hrsim::bench;

    Report report("Figure 7: 2-level ring hierarchies "
                  "(R=1.0, C=0.04, T=4)",
                  "nodes", "latency, cycles");
    for (const std::uint32_t line : {16u, 32u, 64u, 128u}) {
        const int m = maxLocalRing(line);
        const std::string series = std::to_string(line) + "B";
        // The single full local ring first, then k local rings on a
        // global ring, up to ~60 nodes as in the paper.
        {
            SystemConfig cfg =
                ringConfig(std::to_string(m), line, 4, 1.0);
            report.add(series, m, runPoint(series, cfg).avgLatency);
        }
        for (int k = 2; k * m <= 64; ++k) {
            const std::string topo =
                std::to_string(k) + ":" + std::to_string(m);
            SystemConfig cfg = ringConfig(topo, line, 4, 1.0);
            report.add(series, k * m, runPoint(series, cfg).avgLatency);
        }
    }
    emit(report);
    std::printf("paper check: slope increases at 2 local rings and "
                "again past 3 local rings (bisection limit)\n");
    return 0;
}
