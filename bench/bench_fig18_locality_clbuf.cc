/**
 * @file
 * Figure 18: rings vs. meshes with cl-sized mesh buffers under
 * locality R = 0.1, 0.2, 0.3, for 128 B cache lines (C = 0.04,
 * T = 4).
 *
 * Paper shape: locality pushes the cross-over up to 45+ processors
 * even when the mesh gets cache-line-sized buffers.
 */

#include <cstdio>

#include "bench_common.hh"

int
main()
{
    using namespace hrsim;
    using namespace hrsim::bench;

    Report report("Figure 18: locality, 128B lines, cl-sized mesh "
                  "buffers (C=0.04, T=4)",
                  "nodes", "latency, cycles");
    for (const double r : {0.1, 0.2, 0.3}) {
        const std::string tag = " R=" + std::to_string(r).substr(0, 3);
        runMeshSweep(report, "Mesh" + tag, 128, 0, 4, r);
        runRingLadder(report, "Ring" + tag, 128, 4, r);
    }
    emit(report);
    for (const double r : {0.1, 0.2, 0.3}) {
        const std::string tag = " R=" + std::to_string(r).substr(0, 3);
        printCrossover(report, "Mesh" + tag, "Ring" + tag);
    }
    std::printf("paper check: cross-over at 45+ processors for "
                "R <= 0.3\n");
    return 0;
}
