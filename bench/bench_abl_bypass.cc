/**
 * @file
 * Ablation A1: the ring NIC's buffer-bypass path. DESIGN.md calls the
 * bypass out as a latency feature of the paper's NIC (Figure 3); this
 * bench quantifies what it buys across the ring ladder.
 */

#include <cstdio>

#include "bench_common.hh"

int
main()
{
    using namespace hrsim;
    using namespace hrsim::bench;

    Report report("Ablation A1: ring-buffer bypass on/off, 32B lines "
                  "(R=1.0, C=0.04, T=4)",
                  "nodes", "latency, cycles");
    for (const bool bypass : {true, false}) {
        const std::string series = bypass ? "bypass" : "no bypass";
        for (const std::string &topo : standardRingLadder(32)) {
            SystemConfig cfg = ringConfig(topo, 32, 4, 1.0);
            cfg.ringBypass = bypass;
            report.add(series, cfg.numProcessors(),
                       runPoint(series, cfg).avgLatency);
        }
    }
    emit(report);
    std::printf("expectation: disabling the bypass adds roughly one "
                "cycle per transit NIC, growing with distance\n");
    return 0;
}
