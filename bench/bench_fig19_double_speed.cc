/**
 * @file
 * Figure 19: 3-level ring hierarchies with the global ring clocked at
 * normal vs. double speed, for 32/64/128 B lines (R = 1.0, C = 0.04,
 * T = 4).
 *
 * Paper shape: with a double-speed global ring, up to five
 * second-level rings can be sustained (vs. three at normal speed):
 * 120/90/60 processors for 32/64/128 B lines.
 */

#include <cstdio>

#include "bench_common.hh"

namespace
{

int
maxLocalRing(std::uint32_t line_bytes)
{
    switch (line_bytes) {
      case 32:
        return 8;
      case 64:
        return 6;
      default:
        return 4;
    }
}

} // namespace

int
main()
{
    using namespace hrsim;
    using namespace hrsim::bench;

    Report report("Figure 19: 3-level rings, normal vs double-speed "
                  "global ring (R=1.0, C=0.04, T=4)",
                  "nodes", "latency, cycles");
    for (const std::uint32_t line : {32u, 64u, 128u}) {
        const int m = maxLocalRing(line);
        for (const std::uint32_t speed : {1u, 2u}) {
            const std::string series =
                std::to_string(line) + "B " +
                (speed == 2 ? "double" : "normal");
            for (int j = 2; j * 3 * m <= 130; ++j) {
                const std::string topo =
                    std::to_string(j) + ":3:" + std::to_string(m);
                SystemConfig cfg =
                    ringConfig(topo, line, 4, 1.0, speed);
                report.add(series, j * 3 * m,
                           runPoint(series, cfg).avgLatency);
            }
        }
    }
    emit(report);
    std::printf("paper check: double-speed global rings sustain ~5 "
                "second-level rings (vs 3 at normal speed)\n");
    return 0;
}
