/**
 * @file
 * Minibench implementation: flag parsing, the iteration-count search,
 * the per-repetition runner, and the google-benchmark-shaped JSON
 * writer (see include/benchmark/benchmark.h for the scope).
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <fstream>
#include <memory>
#include <regex>
#include <thread>
#include <utility>
#include <vector>

namespace benchmark
{

namespace
{

struct Flags {
    std::string out;
    std::string outFormat = "json";
    std::string filter;
    int repetitions = 1;
    double minTime = 0.5; // seconds, per measured run
};

Flags g_flags;
std::vector<std::pair<std::string, std::string>> g_context;

std::vector<std::unique_ptr<Benchmark>> &
registry()
{
    static std::vector<std::unique_ptr<Benchmark>> benches;
    return benches;
}

std::uint64_t
nowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/** One timed run: iterations, wall seconds, final counters. */
struct Measurement {
    std::uint64_t iterations = 0;
    double seconds = 0.0;
    UserCounters counters;
};

Measurement
runOnce(Benchmark &bench, std::uint64_t iters)
{
    State state(iters);
    bench.fn()(state);
    Measurement m;
    m.iterations = state.iterations();
    m.seconds = state.elapsedSeconds();
    m.counters = state.counters;
    return m;
}

/**
 * Find an iteration count whose measured run meets --benchmark_min_time,
 * google-benchmark style: start at 1, multiply by the measured
 * shortfall (clamped to 10x per step) until the run is long enough.
 * Returns the qualifying measurement so the search's final run is not
 * thrown away.
 */
Measurement
calibrate(Benchmark &bench, std::uint64_t *iters_out)
{
    std::uint64_t iters = 1;
    for (;;) {
        Measurement m = runOnce(bench, iters);
        if (m.seconds >= g_flags.minTime ||
            iters >= (1ULL << 40)) {
            *iters_out = iters;
            return m;
        }
        double grow = 10.0;
        if (m.seconds > 0.0)
            grow = std::min(10.0, 1.4 * g_flags.minTime / m.seconds);
        const auto next = static_cast<std::uint64_t>(
            static_cast<double>(iters) * grow);
        iters = std::max(iters + 1, next);
    }
}

/** JSON string escaping for the small, controlled strings we emit. */
std::string
jsonEscape(const std::string &in)
{
    std::string out;
    out.reserve(in.size() + 2);
    for (const char c : in) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            out += c;
        }
    }
    return out;
}

struct Row {
    std::string name;
    int repetitions = 1;
    int repetitionIndex = 0;
    Measurement m;
};

void
writeJson(const std::string &path, const std::vector<Row> &rows)
{
    std::ofstream out(path);
    if (!out) {
        std::fprintf(stderr, "minibench: cannot write %s\n",
                     path.c_str());
        return;
    }
    char date[64];
    const std::time_t now = std::time(nullptr);
    std::tm tm{};
    localtime_r(&now, &tm);
    std::strftime(date, sizeof(date), "%Y-%m-%dT%H:%M:%S%z", &tm);

    out << "{\n  \"context\": {\n";
    out << "    \"date\": \"" << date << "\",\n";
    // hardware_concurrency() is allowed to return 0 when the count
    // is unknowable; report at least 1 so downstream tooling never
    // divides by the CPU count of a machine that claims to have none.
    const unsigned cpus = std::thread::hardware_concurrency();
    out << "    \"num_cpus\": " << (cpus != 0 ? cpus : 1u) << ",\n";
    // Compiler identification, so baselines taken on different
    // toolchains are distinguishable in the artifact itself.
#if defined(__clang__)
    out << "    \"compiler\": \"clang " << __clang_major__ << '.'
        << __clang_minor__ << '.' << __clang_patchlevel__ << "\",\n";
#elif defined(__GNUC__)
    out << "    \"compiler\": \"gcc " << __GNUC__ << '.'
        << __GNUC_MINOR__ << '.' << __GNUC_PATCHLEVEL__ << "\",\n";
#else
    out << "    \"compiler\": \"unknown\",\n";
#endif
    // The harness is compiled with the benchmarks themselves, so the
    // build type of "the library" is simply this translation unit's.
#ifdef NDEBUG
    out << "    \"library_build_type\": \"release\",\n";
#else
    out << "    \"library_build_type\": \"debug\",\n";
#endif
    out << "    \"library_version\": \"hrsim-minibench\"";
    for (const auto &[key, value] : g_context) {
        out << ",\n    \"" << jsonEscape(key) << "\": \""
            << jsonEscape(value) << "\"";
    }
    out << "\n  },\n  \"benchmarks\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row &row = rows[i];
        const double per_iter_ns =
            row.m.iterations != 0
                ? row.m.seconds * 1e9 /
                      static_cast<double>(row.m.iterations)
                : 0.0;
        out << "    {\n";
        out << "      \"name\": \"" << jsonEscape(row.name)
            << "\",\n";
        out << "      \"run_name\": \"" << jsonEscape(row.name)
            << "\",\n";
        out << "      \"run_type\": \"iteration\",\n";
        out << "      \"repetitions\": " << row.repetitions << ",\n";
        out << "      \"repetition_index\": " << row.repetitionIndex
            << ",\n";
        out << "      \"iterations\": " << row.m.iterations << ",\n";
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.6e", per_iter_ns);
        out << "      \"real_time\": " << buf << ",\n";
        out << "      \"cpu_time\": " << buf << ",\n";
        out << "      \"time_unit\": \"ns\"";
        for (const auto &[key, counter] : row.m.counters) {
            double value = counter.value;
            if ((counter.flags & Counter::kIsRate) != 0 &&
                row.m.seconds > 0.0) {
                value /= row.m.seconds;
            }
            std::snprintf(buf, sizeof(buf), "%.6e", value);
            out << ",\n      \"" << jsonEscape(key) << "\": " << buf;
        }
        out << "\n    }" << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
}

void
printRow(const Row &row)
{
    const double per_iter_ns =
        row.m.iterations != 0
            ? row.m.seconds * 1e9 /
                  static_cast<double>(row.m.iterations)
            : 0.0;
    std::printf("%-28s %12.0f ns %10llu iters", row.name.c_str(),
                per_iter_ns,
                static_cast<unsigned long long>(row.m.iterations));
    for (const auto &[key, counter] : row.m.counters) {
        double value = counter.value;
        if ((counter.flags & Counter::kIsRate) != 0 &&
            row.m.seconds > 0.0) {
            value /= row.m.seconds;
        }
        std::printf("  %s=%.4g", key.c_str(), value);
    }
    std::printf("\n");
}

/** Recognize "--flag=value"; append the value to @a out on match. */
bool
matchFlag(const char *arg, const char *name, std::string *out)
{
    const std::string prefix = std::string(name) + "=";
    if (std::string(arg).rfind(prefix, 0) != 0)
        return false;
    *out = std::string(arg).substr(prefix.size());
    return true;
}

} // namespace

State::iterator
State::begin()
{
    running_ = true;
    startNs_ = nowNs();
    return iterator{this};
}

void
State::finish()
{
    if (!running_)
        return;
    running_ = false;
    elapsed_ =
        static_cast<double>(nowNs() - startNs_) * 1e-9;
}

Benchmark *
RegisterBenchmark(const char *name, Benchmark::Function fn)
{
    registry().push_back(std::make_unique<Benchmark>(name, fn));
    return registry().back().get();
}

void
Initialize(int *argc, char **argv)
{
    int kept = 1;
    for (int i = 1; i < *argc; ++i) {
        std::string value;
        if (matchFlag(argv[i], "--benchmark_out", &value)) {
            g_flags.out = value;
        } else if (matchFlag(argv[i], "--benchmark_out_format",
                             &value)) {
            g_flags.outFormat = value;
        } else if (matchFlag(argv[i], "--benchmark_filter",
                             &value)) {
            g_flags.filter = value;
        } else if (matchFlag(argv[i], "--benchmark_repetitions",
                             &value)) {
            g_flags.repetitions = std::max(1, std::atoi(value.c_str()));
        } else if (matchFlag(argv[i], "--benchmark_min_time",
                             &value)) {
            // google-benchmark accepts both "0.5" and "0.5s".
            if (!value.empty() && value.back() == 's')
                value.pop_back();
            g_flags.minTime = std::atof(value.c_str());
            if (g_flags.minTime <= 0.0)
                g_flags.minTime = 0.5;
        } else {
            argv[kept++] = argv[i];
        }
    }
    *argc = kept;
}

bool
ReportUnrecognizedArguments(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        std::fprintf(stderr, "minibench: unrecognized argument %s\n",
                     argv[i]);
    }
    return argc > 1;
}

void
AddCustomContext(const std::string &key, const std::string &value)
{
    g_context.emplace_back(key, value);
}

std::size_t
RunSpecifiedBenchmarks()
{
    std::vector<Row> rows;
    std::size_t ran = 0;
    for (const auto &bench : registry()) {
        if (!g_flags.filter.empty() &&
            !std::regex_search(bench->name(),
                               std::regex(g_flags.filter))) {
            continue;
        }
        ++ran;
        // The calibration run doubles as repetition 0; remaining
        // repetitions reuse its iteration count so all rows measure
        // the same amount of work (the google-benchmark protocol).
        std::uint64_t iters = 1;
        Measurement first = calibrate(*bench, &iters);
        for (int rep = 0; rep < g_flags.repetitions; ++rep) {
            Row row;
            row.name = bench->name();
            row.repetitions = g_flags.repetitions;
            row.repetitionIndex = rep;
            row.m = rep == 0 ? first : runOnce(*bench, iters);
            printRow(row);
            rows.push_back(std::move(row));
        }
    }
    if (!g_flags.out.empty()) {
        if (g_flags.outFormat == "json") {
            writeJson(g_flags.out, rows);
        } else {
            std::fprintf(stderr,
                         "minibench: unsupported out format '%s' "
                         "(only json)\n",
                         g_flags.outFormat.c_str());
        }
    }
    return ran;
}

void
Shutdown()
{
}

} // namespace benchmark
