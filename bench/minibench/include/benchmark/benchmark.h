/**
 * @file
 * Minimal in-tree google-benchmark-compatible harness ("minibench").
 *
 * The simspeed benchmark used to link the system-wide benchmark
 * library, which on many hosts is a Debug build — every timing it
 * produced carried "library_build_type": "debug" and was useless as a
 * baseline. Packages cannot be installed from CI, so instead of
 * find_package(benchmark) the tree carries this drop-in subset of the
 * google-benchmark API: source-compatible for what bench_simspeed.cc
 * uses, built with the same flags as the simulator itself, and
 * reporting library_build_type from NDEBUG so the Release check in
 * scripts/run_simspeed.sh keeps working unchanged.
 *
 * Differences from google-benchmark, by design:
 *  - All timing is wall-clock (steady_clock). UseRealTime() is
 *    therefore a no-op; single-threaded CPU time and wall time are
 *    equivalent for the simulator loops measured here.
 *  - Only JSON file output ("--benchmark_out_format=json") plus a
 *    small console table; no aggregate (mean/median) rows are
 *    emitted, consumers take medians across the per-repetition
 *    "run_type": "iteration" rows.
 *  - Recognized flags: --benchmark_out, --benchmark_out_format,
 *    --benchmark_repetitions, --benchmark_min_time,
 *    --benchmark_filter. Anything else is left in argv for
 *    ReportUnrecognizedArguments().
 */

#ifndef HRSIM_MINIBENCH_BENCHMARK_H
#define HRSIM_MINIBENCH_BENCHMARK_H

#include <cstdint>
#include <map>
#include <string>

namespace benchmark
{

/** User counter; kIsRate divides by the measured wall seconds. */
class Counter
{
  public:
    enum Flags : std::uint32_t {
        kDefaults = 0,
        kIsRate = 1U << 0,
    };

    Counter() = default;
    Counter(double v, Flags f = kDefaults) : value(v), flags(f) {}

    double value = 0.0;
    Flags flags = kDefaults;
};

using UserCounters = std::map<std::string, Counter>;

/**
 * Per-measurement state handed to the benchmark function. The
 * `for (auto _ : state)` loop runs the pre-decided iteration count;
 * the wall clock starts at begin() and stops when the count runs out.
 */
class State
{
  public:
    explicit State(std::uint64_t iters)
        : max_iterations(iters), remaining_(iters)
    {
    }

    /** The range-for loop variable's type: the user-provided
     * constructor keeps `for (auto _ : state)` free of
     * -Wunused-variable. */
    struct Ignored {
        Ignored() {}
        ~Ignored() {}
    };

    struct iterator {
        State *state;
        bool
        operator!=(const iterator &) const
        {
            if (state->remaining_ != 0)
                return true;
            state->finish();
            return false;
        }
        iterator &
        operator++()
        {
            --state->remaining_;
            return *this;
        }
        Ignored operator*() const { return {}; }
    };

    iterator begin();
    iterator end() { return iterator{this}; }

    std::uint64_t iterations() const
    {
        return max_iterations - remaining_;
    }

    /** Measured wall seconds for the whole loop (after finish). */
    double elapsedSeconds() const { return elapsed_; }

    UserCounters counters;
    const std::uint64_t max_iterations;

  private:
    void finish();

    std::uint64_t remaining_;
    double elapsed_ = 0.0;
    std::uint64_t startNs_ = 0;
    bool running_ = false;
};

/** Registration handle; the chaining setters exist for source
 * compatibility (all minibench timing is wall-clock already). */
class Benchmark
{
  public:
    using Function = void (*)(State &);

    Benchmark(std::string name, Function fn)
        : name_(std::move(name)), fn_(fn)
    {
    }

    Benchmark *UseRealTime() { return this; }

    const std::string &name() const { return name_; }
    Function fn() const { return fn_; }

  private:
    std::string name_;
    Function fn_;
};

/** Register a benchmark (the BENCHMARK macro's backend). */
Benchmark *RegisterBenchmark(const char *name, Benchmark::Function fn);

/** Parse and strip the recognized --benchmark_* flags from argv. */
void Initialize(int *argc, char **argv);

/** True (after printing) if argv still holds unparsed arguments. */
bool ReportUnrecognizedArguments(int argc, char **argv);

/** Extra "context" key for the JSON artifact (build ids and such). */
void AddCustomContext(const std::string &key,
                      const std::string &value);

/** Run every registered benchmark matching --benchmark_filter. */
std::size_t RunSpecifiedBenchmarks();

void Shutdown();

/** Defeat dead-code elimination of a computed value. */
template <class T>
inline void
DoNotOptimize(T const &value)
{
#if defined(__GNUC__) || defined(__clang__)
    asm volatile("" : : "r,m"(value) : "memory");
#else
    volatile T sink = value;
    (void)sink;
#endif
}

} // namespace benchmark

#define BENCHMARK(fn)                                                  \
    static ::benchmark::Benchmark *mb_reg_##fn =                       \
        ::benchmark::RegisterBenchmark(#fn, fn)

#endif // HRSIM_MINIBENCH_BENCHMARK_H
