/**
 * @file
 * Figure 13: network utilization of meshes with 4-flit buffers vs.
 * node count (R = 1.0, C = 0.04, T = 4).
 *
 * Paper shape: utilization peaks early (at 16/9/9/4 nodes for
 * 16/32/64/128 B lines) and decreases monotonically for larger
 * systems, below ~20% at 121 processors.
 */

#include <cstdio>

#include "bench_common.hh"

int
main()
{
    using namespace hrsim;
    using namespace hrsim::bench;

    Report report("Figure 13: mesh network utilization, 4-flit "
                  "buffers (R=1.0, C=0.04, T=4)",
                  "nodes", "% of max");
    for (const std::uint32_t line : {16u, 32u, 64u, 128u}) {
        for (const int width : standardMeshWidths(121)) {
            SystemConfig cfg = meshConfig(width, line, 4, 4, 1.0);
            const RunResult result =
                runPoint(std::to_string(line) + "B", cfg);
            report.add(std::to_string(line) + "B", width * width,
                       100.0 * result.networkUtilization);
        }
    }
    emit(report);
    std::printf("paper check: utilization peaks at small systems and "
                "decays for larger ones\n");
    return 0;
}
