/**
 * @file
 * Ablation A4: inter-ring transfer queue depth. The paper fixes every
 * IRI up/down queue at one cache-line packet; this bench quantifies
 * what deeper queues would buy across the ring ladder (a buffer
 * sizing study in the spirit of the paper's mesh Section 4).
 */

#include <cstdio>

#include "bench_common.hh"

int
main()
{
    using namespace hrsim;
    using namespace hrsim::bench;

    Report report("Ablation A4: IRI queue depth, 64B lines "
                  "(R=1.0, C=0.04, T=4)",
                  "nodes", "latency, cycles");
    for (const std::uint32_t packets : {1u, 2u, 4u}) {
        const std::string series =
            std::to_string(packets) + "-packet queues";
        for (const std::string &topo : standardRingLadder(64)) {
            SystemConfig cfg = ringConfig(topo, 64, 4, 1.0);
            cfg.ringIriQueuePackets = packets;
            report.add(series, cfg.numProcessors(),
                       runPoint(series, cfg).avgLatency);
        }
    }
    emit(report);
    std::printf("expectation: deeper queues smooth transfer bursts "
                "for mid-size systems but cannot lift the bisection "
                "ceiling of large ones\n");
    return 0;
}
