/**
 * @file
 * Figure 6: average latency of single-ring systems vs. node count,
 * for 16/32/64/128 B cache lines and T = 1, 2, 4 outstanding
 * transactions (R = 1.0, C = 0.04).
 *
 * Paper shape to reproduce: single rings conservatively sustain about
 * 12, 8, 6 and 4 nodes at 16, 32, 64 and 128 B lines before latency
 * takes off.
 */

#include <cstdio>

#include "bench_common.hh"

int
main()
{
    using namespace hrsim;
    using namespace hrsim::bench;

    for (const std::uint32_t line : {16u, 32u, 64u, 128u}) {
        Report report("Figure 6: single rings, " +
                          std::to_string(line) +
                          "B lines (R=1.0, C=0.04)",
                      "nodes", "latency, cycles");
        for (const int t : {1, 2, 4}) {
            for (const int nodes :
                 {2, 4, 6, 8, 12, 16, 24, 32, 48, 64}) {
                SystemConfig cfg = ringConfig(
                    std::to_string(nodes), line, t, 1.0);
                const std::string series =
                    "T=" + std::to_string(t);
                const RunResult result = runPoint(series, cfg);
                report.add(series, nodes, result.avgLatency);
            }
        }
        emit(report);
    }

    std::printf("paper check: sustainable single-ring sizes ~12/8/6/4 "
                "nodes for 16/32/64/128B lines\n");
    return 0;
}
