/**
 * @file
 * Figure 9: latency of 3-level ring hierarchies vs. node count
 * (R = 1.0, C = 0.04, T = 4).
 *
 * Second-level rings are in their maximum 2-level configuration
 * (3 local rings of 12/8/6/4 PMs); the sweep adds second-level rings
 * to a third-level global ring. Paper shape: slope increases when the
 * third level appears and again past three second-level rings,
 * supporting ~108/72/54/36 nodes for 16/32/64/128 B lines.
 */

#include <cstdio>

#include "bench_common.hh"

namespace
{

int
maxLocalRing(std::uint32_t line_bytes)
{
    switch (line_bytes) {
      case 16:
        return 12;
      case 32:
        return 8;
      case 64:
        return 6;
      default:
        return 4;
    }
}

} // namespace

int
main()
{
    using namespace hrsim;
    using namespace hrsim::bench;

    Report report("Figure 9: 3-level ring hierarchies "
                  "(R=1.0, C=0.04, T=4)",
                  "nodes", "latency, cycles");
    for (const std::uint32_t line : {16u, 32u, 64u, 128u}) {
        const int m = maxLocalRing(line);
        const std::string series = std::to_string(line) + "B";
        // 2-level maximum first (3 local rings), then j second-level
        // rings under a global ring.
        {
            const std::string topo = "3:" + std::to_string(m);
            SystemConfig cfg = ringConfig(topo, line, 4, 1.0);
            report.add(series, 3 * m, runPoint(series, cfg).avgLatency);
        }
        for (int j = 2; j * 3 * m <= 130; ++j) {
            const std::string topo =
                std::to_string(j) + ":3:" + std::to_string(m);
            SystemConfig cfg = ringConfig(topo, line, 4, 1.0);
            report.add(series, j * 3 * m, runPoint(series, cfg).avgLatency);
        }
    }
    emit(report);
    std::printf("paper check: ~108/72/54/36 sustainable nodes for "
                "16/32/64/128B lines (3 second-level rings)\n");
    return 0;
}
